#include "core/stats.hpp"

#include <gtest/gtest.h>

namespace ecnd {
namespace {

TEST(Percentile, EmptyYieldsZero) { EXPECT_EQ(percentile({}, 50.0), 0.0); }

TEST(Percentile, SingleValue) {
  EXPECT_EQ(percentile({4.0}, 0.0), 4.0);
  EXPECT_EQ(percentile({4.0}, 50.0), 4.0);
  EXPECT_EQ(percentile({4.0}, 100.0), 4.0);
}

TEST(Percentile, MedianOfOddCount) {
  EXPECT_EQ(median({3.0, 1.0, 2.0}), 2.0);
}

TEST(Percentile, MedianInterpolatesEvenCount) {
  EXPECT_DOUBLE_EQ(median({1.0, 2.0, 3.0, 4.0}), 2.5);
}

TEST(Percentile, UnsortedInputHandled) {
  EXPECT_DOUBLE_EQ(percentile({9.0, 1.0, 5.0, 3.0, 7.0}, 100.0), 9.0);
  EXPECT_DOUBLE_EQ(percentile({9.0, 1.0, 5.0, 3.0, 7.0}, 0.0), 1.0);
}

TEST(Percentile, LinearInterpolationBetweenRanks) {
  // ranks 0..3 -> p90 = rank 2.7 between 30 and 40.
  EXPECT_NEAR(percentile({10.0, 20.0, 30.0, 40.0}, 90.0), 37.0, 1e-9);
}

TEST(Percentile, ClampsOutOfRangeP) {
  EXPECT_EQ(percentile({1.0, 2.0}, -5.0), 1.0);
  EXPECT_EQ(percentile({1.0, 2.0}, 150.0), 2.0);
}

TEST(JainFairness, PerfectlyFair) {
  EXPECT_DOUBLE_EQ(jain_fairness({5.0, 5.0, 5.0, 5.0}), 1.0);
}

TEST(JainFairness, SingleFlowIsFairByDefinition) {
  EXPECT_DOUBLE_EQ(jain_fairness({3.0}), 1.0);
}

TEST(JainFairness, TotallyUnfairApproaches1OverN) {
  const double j = jain_fairness({10.0, 0.0, 0.0, 0.0});
  EXPECT_NEAR(j, 0.25, 1e-12);
}

TEST(JainFairness, EmptyAndZeroInputs) {
  EXPECT_EQ(jain_fairness({}), 0.0);
  EXPECT_EQ(jain_fairness({0.0, 0.0}), 0.0);
}

TEST(JainFairness, KnownTwoFlowValue) {
  // (1+3)^2 / (2*(1+9)) = 16/20.
  EXPECT_DOUBLE_EQ(jain_fairness({1.0, 3.0}), 0.8);
}

TEST(EmpiricalCdf, EndpointsAndMonotonicity) {
  auto cdf = empirical_cdf({5.0, 1.0, 3.0, 2.0, 4.0}, 5);
  ASSERT_EQ(cdf.size(), 5u);
  EXPECT_DOUBLE_EQ(cdf.front().value, 1.0);
  EXPECT_DOUBLE_EQ(cdf.back().value, 5.0);
  EXPECT_DOUBLE_EQ(cdf.back().fraction, 1.0);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].value, cdf[i - 1].value);
    EXPECT_GE(cdf[i].fraction, cdf[i - 1].fraction);
  }
}

TEST(EmpiricalCdf, ReducesLargePopulations) {
  std::vector<double> v;
  for (int i = 0; i < 10000; ++i) v.push_back(static_cast<double>(i));
  auto cdf = empirical_cdf(v, 64);
  EXPECT_EQ(cdf.size(), 64u);
  EXPECT_DOUBLE_EQ(cdf.back().value, 9999.0);
}

TEST(EmpiricalCdf, EmptyInput) { EXPECT_TRUE(empirical_cdf({}, 8).empty()); }

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), 2.0, 1e-12);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

}  // namespace
}  // namespace ecnd
