#include "core/stats.hpp"

#include <gtest/gtest.h>

#include "core/diagnostic.hpp"

namespace ecnd {
namespace {

TEST(Percentile, EmptyIsNotAMeasurement) {
  EXPECT_FALSE(percentile({}, 50.0).has_value());
  EXPECT_FALSE(median({}).has_value());
}

TEST(Percentile, SingleValue) {
  EXPECT_EQ(percentile({4.0}, 0.0), 4.0);
  EXPECT_EQ(percentile({4.0}, 50.0), 4.0);
  EXPECT_EQ(percentile({4.0}, 100.0), 4.0);
}

TEST(Percentile, MedianOfOddCount) {
  EXPECT_EQ(median({3.0, 1.0, 2.0}), 2.0);
}

TEST(Percentile, MedianInterpolatesEvenCount) {
  EXPECT_DOUBLE_EQ(*median({1.0, 2.0, 3.0, 4.0}), 2.5);
}

TEST(Percentile, UnsortedInputHandled) {
  EXPECT_DOUBLE_EQ(*percentile({9.0, 1.0, 5.0, 3.0, 7.0}, 100.0), 9.0);
  EXPECT_DOUBLE_EQ(*percentile({9.0, 1.0, 5.0, 3.0, 7.0}, 0.0), 1.0);
}

TEST(Percentile, LinearInterpolationBetweenRanks) {
  // ranks 0..3 -> p90 = rank 2.7 between 30 and 40.
  EXPECT_NEAR(*percentile({10.0, 20.0, 30.0, 40.0}, 90.0), 37.0, 1e-9);
}

TEST(Percentile, ClampsOutOfRangeP) {
  EXPECT_EQ(percentile({1.0, 2.0}, -5.0), 1.0);
  EXPECT_EQ(percentile({1.0, 2.0}, 150.0), 2.0);
}

TEST(JainFairness, PerfectlyFair) {
  EXPECT_DOUBLE_EQ(*jain_fairness({5.0, 5.0, 5.0, 5.0}), 1.0);
}

TEST(JainFairness, SingleFlowIsFairByDefinition) {
  EXPECT_DOUBLE_EQ(*jain_fairness({3.0}), 1.0);
}

TEST(JainFairness, TotallyUnfairApproaches1OverN) {
  const double j = jain_fairness({10.0, 0.0, 0.0, 0.0}).value();
  EXPECT_NEAR(j, 0.25, 1e-12);
}

TEST(JainFairness, EmptyAndAllZeroAreUndefined) {
  // Both are 0/0: no flows (or no traffic) has no fairness, fair or unfair.
  EXPECT_FALSE(jain_fairness({}).has_value());
  EXPECT_FALSE(jain_fairness({0.0, 0.0}).has_value());
}

TEST(JainFairness, KnownTwoFlowValue) {
  // (1+3)^2 / (2*(1+9)) = 16/20.
  EXPECT_DOUBLE_EQ(*jain_fairness({1.0, 3.0}), 0.8);
}

TEST(RequireStat, PassesValuesThrough) {
  EXPECT_DOUBLE_EQ(require_stat(1.25, "x"), 1.25);
}

TEST(RequireStat, EmptyThrowsDiagnostic) {
  try {
    require_stat(jain_fairness({}), "jain(tail_rates)");
    FAIL() << "require_stat accepted an empty statistic";
  } catch (const InvariantViolation& e) {
    EXPECT_EQ(e.diagnostic().component, "stats");
    EXPECT_EQ(e.diagnostic().variable, "jain(tail_rates)");
  }
}

}  // namespace
}  // namespace ecnd
