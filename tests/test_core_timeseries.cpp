#include "core/timeseries.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ecnd {
namespace {

TimeSeries ramp() {
  TimeSeries ts("ramp");
  for (int i = 0; i <= 10; ++i) ts.push(i * 0.1, i * 1.0);
  return ts;
}

TEST(TimeSeries, EmptyBasics) {
  TimeSeries ts;
  EXPECT_TRUE(ts.empty());
  EXPECT_EQ(ts.value_at(1.0), 0.0);
  EXPECT_EQ(ts.mean_over(0.0, 1.0), 0.0);
}

TEST(TimeSeries, ValueAtInterpolates) {
  TimeSeries ts;
  ts.push(0.0, 0.0);
  ts.push(1.0, 10.0);
  EXPECT_DOUBLE_EQ(ts.value_at(0.5), 5.0);
  EXPECT_DOUBLE_EQ(ts.value_at(0.25), 2.5);
}

TEST(TimeSeries, ValueAtClampsOutsideSpan) {
  TimeSeries ts = ramp();
  EXPECT_DOUBLE_EQ(ts.value_at(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(ts.value_at(99.0), 10.0);
}

TEST(TimeSeries, WindowExtremes) {
  TimeSeries ts = ramp();
  EXPECT_DOUBLE_EQ(ts.min_over(0.25, 0.85).value(), 3.0);
  EXPECT_DOUBLE_EQ(ts.max_over(0.25, 0.85).value(), 8.0);
}

TEST(TimeSeries, MeanOverIsTimeWeighted) {
  TimeSeries ts;
  ts.push(0.0, 0.0);
  ts.push(1.0, 0.0);
  ts.push(1.5, 2.0);  // short excursion
  ts.push(2.0, 0.0);
  // trapezoid area = 0 + 0.5 + 0.5 = 1.0 over span 2 -> mean 0.5.
  EXPECT_NEAR(ts.mean_over(0.0, 2.0), 0.5, 1e-12);
}

TEST(TimeSeries, StddevOfConstantIsZero) {
  TimeSeries ts;
  for (int i = 0; i < 10; ++i) ts.push(i, 4.0);
  EXPECT_DOUBLE_EQ(ts.stddev_over(0.0, 9.0), 0.0);
}

TEST(TimeSeries, StddevDetectsOscillation) {
  TimeSeries ts;
  for (int i = 0; i < 100; ++i) ts.push(i, i % 2 ? 1.0 : -1.0);
  EXPECT_NEAR(ts.stddev_over(0.0, 99.0), 1.0, 1e-9);
}

TEST(TimeSeries, StddevIsTimeWeightedOnUnevenGrid) {
  // Nine quiet seconds, then a one-second burst to 6. Sample-weighted std
  // counts the burst as a third of the data (std = sqrt(8) ~ 2.83); the
  // time-weighted std counts it as a tenth of the span.
  TimeSeries ts;
  ts.push(0.0, 0.0);
  ts.push(9.0, 0.0);
  ts.push(10.0, 6.0);
  // mean = 0.3; trapezoid of (x-0.3)^2 = 0.5*(0.09+0.09)*9
  //   + 0.5*(0.09+32.49)*1 = 17.1; std = sqrt(17.1/10).
  EXPECT_NEAR(ts.stddev_over(0.0, 10.0), std::sqrt(1.71), 1e-12);
  EXPECT_LT(ts.stddev_over(0.0, 10.0), 2.0);  // well below sample-weighted 2.83
}

TEST(TimeSeries, StddevOfEvenGridMatchesSampleStd) {
  // On an evenly sampled symmetric series the time weighting reduces to the
  // plain sample weighting (each interior sample gets weight dt).
  TimeSeries ts;
  for (int i = 0; i < 50; ++i) ts.push(i, i % 2 ? 3.0 : 1.0);
  EXPECT_NEAR(ts.stddev_over(0.0, 49.0), 1.0, 1e-9);
}

TEST(TimeSeries, ResampleUniformGrid) {
  TimeSeries ts = ramp();
  TimeSeries rs = ts.resampled(5);
  ASSERT_EQ(rs.size(), 5u);
  EXPECT_DOUBLE_EQ(rs[0].t, 0.0);
  EXPECT_DOUBLE_EQ(rs[4].t, 1.0);
  EXPECT_NEAR(rs[2].value, 5.0, 1e-9);
}

TEST(TimeSeries, DecimateKeepsEndpoints) {
  TimeSeries ts = ramp();
  ts.decimate(4);
  EXPECT_LT(ts.size(), 11u);
  EXPECT_DOUBLE_EQ(ts.samples().front().t, 0.0);
  EXPECT_DOUBLE_EQ(ts.samples().back().t, 1.0);
}

TEST(TimeSeries, DecimateNoOpForSmallK) {
  TimeSeries ts = ramp();
  const std::size_t n = ts.size();
  ts.decimate(1);
  EXPECT_EQ(ts.size(), n);
}

TEST(TimeSeries, WindowOutsideDataHasNoExtremes) {
  TimeSeries ts = ramp();
  EXPECT_EQ(ts.mean_over(5.0, 6.0), 0.0);
  EXPECT_FALSE(ts.min_over(5.0, 6.0).has_value());
  EXPECT_FALSE(ts.max_over(5.0, 6.0).has_value());
}

TEST(TimeSeries, WindowedResampleMatchesWindow) {
  TimeSeries ts = ramp();  // t in [0, 1], value = 10t
  const TimeSeries rs = ts.resampled(5, 0.2, 0.6);
  ASSERT_EQ(rs.size(), 5u);
  EXPECT_DOUBLE_EQ(rs[0].t, 0.2);
  EXPECT_DOUBLE_EQ(rs[4].t, 0.6);
  EXPECT_NEAR(rs[2].value, 4.0, 1e-9);
}

TEST(TimeSeries, WindowedResampleClampsToSpan) {
  TimeSeries ts = ramp();
  const TimeSeries rs = ts.resampled(3, -5.0, 99.0);
  ASSERT_EQ(rs.size(), 3u);
  EXPECT_DOUBLE_EQ(rs[0].t, 0.0);
  EXPECT_DOUBLE_EQ(rs[2].t, 1.0);
}

// --- resampled(n, t0, t1) degenerate windows ------------------------------
// These cases used to fall into an empty-output path; shape_line and the
// offline analyzers window their inputs and must never lose a non-empty
// signal to a degenerate window.

TEST(TimeSeries, ResampleZeroPointsIsEmpty) {
  TimeSeries ts = ramp();
  EXPECT_TRUE(ts.resampled(0, 0.2, 0.6).empty());
}

TEST(TimeSeries, ResampleSinglePointSamplesWindowStart) {
  TimeSeries ts = ramp();
  const TimeSeries rs = ts.resampled(1, 0.2, 0.6);
  ASSERT_EQ(rs.size(), 1u);
  EXPECT_DOUBLE_EQ(rs[0].t, 0.2);
  EXPECT_NEAR(rs[0].value, 2.0, 1e-9);
}

TEST(TimeSeries, ResampleInstantWindowYieldsOneSample) {
  TimeSeries ts = ramp();
  const TimeSeries rs = ts.resampled(5, 0.4, 0.4);  // t0 == t1
  ASSERT_EQ(rs.size(), 1u);
  EXPECT_DOUBLE_EQ(rs[0].t, 0.4);
  EXPECT_NEAR(rs[0].value, 4.0, 1e-9);
}

TEST(TimeSeries, ResampleWindowClampedToSingleInstant) {
  // [0.95, 99] clamps to [0.95, 1.0]; [99, 100] clamps past the span
  // entirely and must return the nearest endpoint, not an empty series.
  TimeSeries ts = ramp();
  const TimeSeries tail = ts.resampled(4, 99.0, 100.0);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_DOUBLE_EQ(tail[0].t, 1.0);
  EXPECT_NEAR(tail[0].value, 10.0, 1e-9);

  const TimeSeries head = ts.resampled(4, -10.0, -5.0);
  ASSERT_EQ(head.size(), 1u);
  EXPECT_DOUBLE_EQ(head[0].t, 0.0);
  EXPECT_NEAR(head[0].value, 0.0, 1e-9);
}

TEST(TimeSeries, ResampleSingleSampleSeries) {
  TimeSeries ts;
  ts.push(2.0, 7.0);
  const TimeSeries rs = ts.resampled(5, 0.0, 10.0);  // window clamps to [2, 2]
  ASSERT_EQ(rs.size(), 1u);
  EXPECT_DOUBLE_EQ(rs[0].t, 2.0);
  EXPECT_DOUBLE_EQ(rs[0].value, 7.0);
}

TEST(TimeSeries, ResampleEmptySeriesStaysEmpty) {
  TimeSeries ts;
  EXPECT_TRUE(ts.resampled(5, 0.0, 1.0).empty());
}

}  // namespace
}  // namespace ecnd
