#include "core/timeseries.hpp"

#include <gtest/gtest.h>

namespace ecnd {
namespace {

TimeSeries ramp() {
  TimeSeries ts("ramp");
  for (int i = 0; i <= 10; ++i) ts.push(i * 0.1, i * 1.0);
  return ts;
}

TEST(TimeSeries, EmptyBasics) {
  TimeSeries ts;
  EXPECT_TRUE(ts.empty());
  EXPECT_EQ(ts.value_at(1.0), 0.0);
  EXPECT_EQ(ts.mean_over(0.0, 1.0), 0.0);
}

TEST(TimeSeries, ValueAtInterpolates) {
  TimeSeries ts;
  ts.push(0.0, 0.0);
  ts.push(1.0, 10.0);
  EXPECT_DOUBLE_EQ(ts.value_at(0.5), 5.0);
  EXPECT_DOUBLE_EQ(ts.value_at(0.25), 2.5);
}

TEST(TimeSeries, ValueAtClampsOutsideSpan) {
  TimeSeries ts = ramp();
  EXPECT_DOUBLE_EQ(ts.value_at(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(ts.value_at(99.0), 10.0);
}

TEST(TimeSeries, WindowExtremes) {
  TimeSeries ts = ramp();
  EXPECT_DOUBLE_EQ(ts.min_over(0.25, 0.85), 3.0);
  EXPECT_DOUBLE_EQ(ts.max_over(0.25, 0.85), 8.0);
}

TEST(TimeSeries, MeanOverIsTimeWeighted) {
  TimeSeries ts;
  ts.push(0.0, 0.0);
  ts.push(1.0, 0.0);
  ts.push(1.5, 2.0);  // short excursion
  ts.push(2.0, 0.0);
  // trapezoid area = 0 + 0.5 + 0.5 = 1.0 over span 2 -> mean 0.5.
  EXPECT_NEAR(ts.mean_over(0.0, 2.0), 0.5, 1e-12);
}

TEST(TimeSeries, StddevOfConstantIsZero) {
  TimeSeries ts;
  for (int i = 0; i < 10; ++i) ts.push(i, 4.0);
  EXPECT_DOUBLE_EQ(ts.stddev_over(0.0, 9.0), 0.0);
}

TEST(TimeSeries, StddevDetectsOscillation) {
  TimeSeries ts;
  for (int i = 0; i < 100; ++i) ts.push(i, i % 2 ? 1.0 : -1.0);
  EXPECT_NEAR(ts.stddev_over(0.0, 99.0), 1.0, 1e-9);
}

TEST(TimeSeries, ResampleUniformGrid) {
  TimeSeries ts = ramp();
  TimeSeries rs = ts.resampled(5);
  ASSERT_EQ(rs.size(), 5u);
  EXPECT_DOUBLE_EQ(rs[0].t, 0.0);
  EXPECT_DOUBLE_EQ(rs[4].t, 1.0);
  EXPECT_NEAR(rs[2].value, 5.0, 1e-9);
}

TEST(TimeSeries, DecimateKeepsEndpoints) {
  TimeSeries ts = ramp();
  ts.decimate(4);
  EXPECT_LT(ts.size(), 11u);
  EXPECT_DOUBLE_EQ(ts.samples().front().t, 0.0);
  EXPECT_DOUBLE_EQ(ts.samples().back().t, 1.0);
}

TEST(TimeSeries, DecimateNoOpForSmallK) {
  TimeSeries ts = ramp();
  const std::size_t n = ts.size();
  ts.decimate(1);
  EXPECT_EQ(ts.size(), n);
}

TEST(TimeSeries, WindowOutsideDataIsZero) {
  TimeSeries ts = ramp();
  EXPECT_EQ(ts.mean_over(5.0, 6.0), 0.0);
  EXPECT_EQ(ts.max_over(5.0, 6.0), 0.0);
}

}  // namespace
}  // namespace ecnd
