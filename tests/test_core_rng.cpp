#include "core/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace ecnd {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_EQ(same, 0);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(7);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 16; ++i) first.push_back(a.next_u64());
  a.reseed(7);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next_u64(), first[static_cast<std::size_t>(i)]);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanAndVariance) {
  Rng rng(5);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    sum += u;
    sum2 += u * u;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.005);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.005);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-3.0, 7.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 7.0);
  }
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng rng(13);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) ++counts[rng.uniform_index(10)];
  for (int c : counts) {
    EXPECT_GT(c, 9000);
    EXPECT_LT(c, 11000);
  }
}

TEST(Rng, ExponentialMean) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.5);
  EXPECT_NEAR(sum / n, 2.5, 0.05);
}

TEST(Rng, ExponentialAlwaysPositive) {
  Rng rng(19);
  for (int i = 0; i < 10000; ++i) EXPECT_GT(rng.exponential(1.0), 0.0);
}

TEST(Rng, NormalMoments) {
  Rng rng(23);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 3.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, WorksAsUniformRandomBitGenerator) {
  Rng rng(31);
  std::vector<int> v{1, 2, 3, 4, 5};
  std::shuffle(v.begin(), v.end(), rng);  // compiles + runs
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, (std::vector<int>{1, 2, 3, 4, 5}));
}

}  // namespace
}  // namespace ecnd
