// Large-N scaling of the fluid engine: input validation, the rate-floor
// feasibility check, aggregate-observables sampling, and 10k-flow smoke
// runs pinned to the paper's fixed points (Equation 14 / Theorem 5).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "control/dcqcn_analysis.hpp"
#include "core/diagnostic.hpp"
#include "fluid/dcqcn_model.hpp"
#include "fluid/fluid_model.hpp"
#include "fluid/timely_model.hpp"

namespace ecnd::fluid {
namespace {

TEST(FluidSimulate, RejectsWrongLengthOverride) {
  DcqcnFluidParams p;
  p.num_flows = 2;
  DcqcnFluidModel m(p);
  ASSERT_EQ(m.dim(), 7u);
  try {
    simulate(m, 1e-4, 1e-5, std::vector<double>(6, 0.0));
    FAIL() << "expected InvariantViolation";
  } catch (const InvariantViolation& e) {
    EXPECT_EQ(e.diagnostic().component, "fluid::simulate");
    EXPECT_EQ(e.diagnostic().variable, "initial_override");
    EXPECT_DOUBLE_EQ(e.diagnostic().value, 6.0);
    EXPECT_NE(e.diagnostic().detail.find("state dimension is 7"),
              std::string::npos);
  }
}

TEST(FluidSimulate, AggregatesRejectWrongLengthOverride) {
  DcqcnFluidParams p;
  p.num_flows = 2;
  DcqcnFluidModel m(p);
  EXPECT_THROW(
      simulate_aggregates(m, 1e-4, 1e-5, std::vector<double>(8, 0.0)),
      InvariantViolation);
}

TEST(FluidSimulate, AcceptsMatchingOrEmptyOverride) {
  DcqcnFluidParams p;
  p.num_flows = 2;
  DcqcnFluidModel m(p);
  EXPECT_NO_THROW(simulate(m, 1e-4, 1e-5));
  EXPECT_NO_THROW(simulate(m, 1e-4, 1e-5, m.initial_state()));
  EXPECT_NO_THROW(simulate_aggregates(m, 1e-4, 1e-5, m.initial_state()));
}

// At 10G / 1000B the capacity is 1.25e6 pps; DCQCN's 1 Mb/s floor is 125 pps
// so exactly 10000 flows fit, and TIMELY's 10 Mb/s floor (1250 pps) admits
// exactly 1000. N * floor == capacity is the feasible boundary (demand can
// just drain), one more flow pins demand above capacity forever.
TEST(FluidFeasibility, DcqcnRejectsFlowsBeyondRateFloorCapacity) {
  DcqcnFluidParams p;
  p.num_flows = 10001;
  try {
    DcqcnFluidModel m(p);
    FAIL() << "expected InvariantViolation";
  } catch (const InvariantViolation& e) {
    EXPECT_EQ(e.diagnostic().component, "DcqcnFluidModel");
    EXPECT_EQ(e.diagnostic().variable, "num_flows");
    EXPECT_DOUBLE_EQ(e.diagnostic().value, 10001.0);
    EXPECT_NE(e.diagnostic().detail.find("max feasible N = 10000"),
              std::string::npos);
  }
  p.num_flows = 10000;
  EXPECT_NO_THROW(DcqcnFluidModel{p});
}

TEST(FluidFeasibility, TimelyRejectsFlowsBeyondRateFloorCapacity) {
  TimelyFluidParams p;
  p.num_flows = 1001;
  try {
    TimelyFluidModel m(p);
    FAIL() << "expected InvariantViolation";
  } catch (const InvariantViolation& e) {
    EXPECT_EQ(e.diagnostic().component, "TimelyFluidBase");
    EXPECT_NE(e.diagnostic().detail.find("max feasible N = 1000"),
              std::string::npos);
  }
  p.num_flows = 1000;
  EXPECT_NO_THROW(TimelyFluidModel{p});
  p.num_flows = 1001;
  EXPECT_THROW(PatchedTimelyFluidModel{p}, InvariantViolation);
}

// Each aggregate sample must be an exact (bitwise) flow-order reduction of
// the per-flow series simulate() records — no reordering, no fused reductions.
TEST(FluidAggregates, MatchPerFlowReductionBitwise) {
  DcqcnFluidParams p;
  p.num_flows = 3;
  DcqcnFluidModel m(p);
  auto x0 = m.initial_state();
  x0[m.rate_index(0)] = 0.7 * p.capacity_pps();
  x0[m.rate_index(1)] = 0.2 * p.capacity_pps();
  x0[m.rate_index(2)] = 0.1 * p.capacity_pps();

  const FluidRun per_flow = simulate(m, 2e-3, 1e-4, x0);
  const FluidAggregateRun agg = simulate_aggregates(m, 2e-3, 1e-4, x0);

  ASSERT_EQ(agg.queue_bytes.size(), per_flow.queue_bytes.size());
  for (std::size_t k = 0; k < agg.queue_bytes.size(); ++k) {
    EXPECT_EQ(agg.queue_bytes[k].t, per_flow.queue_bytes[k].t);
    EXPECT_EQ(agg.queue_bytes[k].value, per_flow.queue_bytes[k].value);
    double sum = 0.0;
    double sum_sq = 0.0;
    double lo = 0.0;
    double hi = 0.0;
    for (int i = 0; i < 3; ++i) {
      const double r = per_flow.flow_rate_gbps[static_cast<std::size_t>(i)][k]
                           .value;
      sum += r;
      sum_sq += r * r;
      lo = i == 0 ? r : std::min(lo, r);
      hi = i == 0 ? r : std::max(hi, r);
    }
    EXPECT_EQ(agg.sum_rate_gbps[k].value, sum);
    EXPECT_EQ(agg.min_rate_gbps[k].value, lo);
    EXPECT_EQ(agg.max_rate_gbps[k].value, hi);
    EXPECT_EQ(agg.jain_fairness[k].value, sum * sum / (3.0 * sum_sq));
  }
}

TEST(FluidAggregates, SymmetricRunIsPerfectlyFair) {
  DcqcnFluidParams p;
  p.num_flows = 4;
  DcqcnFluidModel m(p);
  const FluidAggregateRun run = simulate_aggregates(m, 2e-3, 1e-4);
  for (std::size_t k = 0; k < run.jain_fairness.size(); ++k) {
    EXPECT_DOUBLE_EQ(run.jain_fairness[k].value, 1.0);
    EXPECT_EQ(run.min_rate_gbps[k].value, run.max_rate_gbps[k].value);
  }
}

// 10k-flow DCQCN smoke at 100G (C/N = 1250 pps, exactly the rate floor):
// seeded at the Theorem-1 fixed point the trajectory must hold it — the
// stationarity check exercises the Equation-11 algebra (whose Equation-14
// closed form approximates p*) at a scale the interleaved layout could not
// integrate, and the run itself is the 10k capacity proof.
TEST(FluidScale10k, DcqcnHoldsFixedPointAtTenThousandFlows) {
  DcqcnFluidParams p;
  p.link_rate = gbps(100.0);
  p.num_flows = 10000;
  p.red_linear_extension = true;  // Equation 9/14 only exist on the extension
  const auto fp = control::solve_dcqcn_fixed_point(p);
  ASSERT_TRUE(fp.interior);
  ASSERT_GE(fp.rate_pps, DcqcnFluidModel::kMinRatePps);

  DcqcnFluidModel m(p);
  auto x0 = m.initial_state();
  x0[m.queue_index()] = fp.q_star_pkts;
  for (int i = 0; i < p.num_flows; ++i) {
    x0[m.alpha_index(i)] = fp.alpha_star;
    x0[m.target_rate_index(i)] = fp.target_rate_pps;
    x0[m.rate_index(i)] = fp.rate_pps;
  }
  const FluidAggregateRun run =
      simulate_aggregates(m, 3e-3, 1e-4, std::move(x0), 2e-6);

  ASSERT_FALSE(run.queue_bytes.empty());
  const double q_star = fp.q_star_bytes(p);
  EXPECT_NEAR(run.queue_bytes.back().value, q_star, 0.02 * q_star);
  const double r_star_gbps = fp.rate_pps * 8.0 * p.mtu_bytes / 1e9;
  EXPECT_NEAR(run.min_rate_gbps.back().value, r_star_gbps, 0.05 * r_star_gbps);
  EXPECT_NEAR(run.max_rate_gbps.back().value, r_star_gbps, 0.05 * r_star_gbps);
  EXPECT_NEAR(run.jain_fairness.back().value, 1.0, 1e-9);
}

// 10k-flow patched TIMELY at 400G with delta = 1 Mb/s: q* of Theorem 5 /
// Equation 31 sits inside the gradient band (q' = 2500 < q* = 10312.5 <
// qhigh = 25000) and R* = C/N = 5000 pps clears the rate floor. Seeded at
// (q*, C/N, g = 0) the w(0) = 1/2 blend of Equation 29 cancels exactly, so
// the trajectory must stay put.
TEST(FluidScale10k, PatchedTimelyHoldsTheorem5QueueAtTenThousandFlows) {
  TimelyFluidParams p = patched_timely_defaults();
  p.link_rate = gbps(400.0);
  p.delta = mbps(1.0);
  p.num_flows = 10000;
  PatchedTimelyFluidModel m(p);

  const double q_star_pkts = m.fixed_point_queue_pkts();
  ASSERT_GT(q_star_pkts, p.qlow_pkts());
  ASSERT_LT(q_star_pkts, p.qhigh_pkts());
  ASSERT_GE(p.capacity_pps() / p.num_flows, TimelyFluidBase::kMinRatePps);

  auto x0 = m.initial_state();  // rates C/N, gradients 0
  x0[m.queue_index()] = q_star_pkts;
  const FluidAggregateRun run =
      simulate_aggregates(m, 2e-3, 1e-4, std::move(x0), 1e-6);

  ASSERT_FALSE(run.queue_bytes.empty());
  const double q_star = q_star_pkts * p.mtu_bytes;
  EXPECT_NEAR(run.queue_bytes.back().value, q_star, 0.02 * q_star);
  const double r_star_gbps =
      p.capacity_pps() / p.num_flows * 8.0 * p.mtu_bytes / 1e9;
  EXPECT_NEAR(run.min_rate_gbps.back().value, r_star_gbps, 0.05 * r_star_gbps);
  EXPECT_NEAR(run.max_rate_gbps.back().value, r_star_gbps, 0.05 * r_star_gbps);
}

}  // namespace
}  // namespace ecnd::fluid
