#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/flow_table.hpp"

namespace ecnd::sim {
namespace {

// Deterministic 64-bit stream for driving churn (no <random> needed).
std::uint64_t splitmix(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

TEST(FlowTable, InsertFindErase) {
  FlowTable<int> table;
  EXPECT_EQ(table.size(), 0u);
  table.emplace(7) = 70;
  table.emplace(9) = 90;
  ASSERT_NE(table.find(7), nullptr);
  EXPECT_EQ(*table.find(7), 70);
  EXPECT_EQ(*table.find(9), 90);
  EXPECT_EQ(table.find(8), nullptr);
  EXPECT_TRUE(table.erase(7));
  EXPECT_FALSE(table.erase(7));
  EXPECT_EQ(table.find(7), nullptr);
  EXPECT_EQ(*table.find(9), 90);
  EXPECT_EQ(table.size(), 1u);
}

TEST(FlowTable, ChurnMatchesUnorderedMapReference) {
  FlowTable<std::uint64_t> table;
  std::unordered_map<std::uint64_t, std::uint64_t> reference;
  std::uint64_t rng = 20161212;
  for (int op = 0; op < 20000; ++op) {
    // Small key space (1..64) forces heavy insert/erase collisions, which is
    // what exercises linear probing and backward-shift deletion.
    const std::uint64_t key = 1 + (splitmix(rng) & 63);
    const std::uint64_t action = splitmix(rng) % 3;
    if (action == 0) {
      // Insert if absent.
      if (reference.find(key) == reference.end()) {
        const std::uint64_t value = splitmix(rng);
        table.emplace(key) = value;
        reference.emplace(key, value);
      }
    } else if (action == 1) {
      EXPECT_EQ(table.erase(key), reference.erase(key) == 1u);
    } else {
      const auto it = reference.find(key);
      std::uint64_t* found = table.find(key);
      if (it == reference.end()) {
        EXPECT_EQ(found, nullptr) << "key " << key;
      } else {
        ASSERT_NE(found, nullptr) << "key " << key;
        EXPECT_EQ(*found, it->second);
      }
    }
    ASSERT_EQ(table.size(), reference.size());
  }
  // Final sweep: every surviving key agrees; for_each visits exactly size().
  std::size_t visited = 0;
  table.for_each([&](std::uint64_t key, std::uint64_t& value) {
    ++visited;
    const auto it = reference.find(key);
    ASSERT_NE(it, reference.end());
    EXPECT_EQ(value, it->second);
  });
  EXPECT_EQ(visited, reference.size());
}

TEST(FlowTable, SteadyStateChurnDoesNotGrowTheArena) {
  FlowTable<int> table;
  for (std::uint64_t key = 1; key <= 32; ++key) table.emplace(key) = 1;
  const std::size_t capacity = table.capacity();
  // A sweep-style workload holds ~32 live flows while ids keep climbing;
  // erased slots must be reused instead of growing the arena.
  for (std::uint64_t key = 33; key <= 4096; ++key) {
    ASSERT_TRUE(table.erase(key - 32));
    table.emplace(key) = 1;
  }
  EXPECT_EQ(table.size(), 32u);
  EXPECT_EQ(table.capacity(), capacity);
}

TEST(FlowTable, ReusedSlotsStartFromDefaultValue) {
  FlowTable<std::vector<int>> table;
  table.emplace(1).assign(100, 42);
  ASSERT_TRUE(table.erase(1));
  // The next emplace reuses the freed slot and must see a fresh value.
  std::vector<int>& fresh = table.emplace(2);
  EXPECT_TRUE(fresh.empty());
}

TEST(FlowTable, SurvivesRehashUnderGrowth) {
  FlowTable<std::uint64_t> table;
  for (std::uint64_t key = 1; key <= 1000; ++key) table.emplace(key) = key * 3;
  EXPECT_EQ(table.size(), 1000u);
  for (std::uint64_t key = 1; key <= 1000; ++key) {
    ASSERT_NE(table.find(key), nullptr) << "key " << key;
    EXPECT_EQ(*table.find(key), key * 3);
  }
  // Erase the odd half, keep the even half intact.
  for (std::uint64_t key = 1; key <= 1000; key += 2) {
    ASSERT_TRUE(table.erase(key));
  }
  EXPECT_EQ(table.size(), 500u);
  for (std::uint64_t key = 2; key <= 1000; key += 2) {
    ASSERT_NE(table.find(key), nullptr) << "key " << key;
  }
}

}  // namespace
}  // namespace ecnd::sim
