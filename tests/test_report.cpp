// Regression reporter (src/report): JSON parser round-trips the formats the
// repo emits, and evaluate() implements the documented pass/warn/fail
// semantics — missing or null observables fail (a gate that cannot measure is
// broken, not green), soft ranges warn, perf deltas warn unless strict.

#include "report/report.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "report/json.hpp"

namespace ecnd::report {
namespace {

// --- Json parser -------------------------------------------------------------

TEST(Json, ParsesScalarsAndContainers) {
  const Json j = Json::parse(
      R"({"a": 1.5, "b": "text", "c": true, "d": null, "e": [1, 2, 3]})");
  ASSERT_TRUE(j.is_object());
  EXPECT_DOUBLE_EQ(j.get_number("a").value(), 1.5);
  EXPECT_EQ(j.get_string("b").value(), "text");
  EXPECT_TRUE(j.get("c")->boolean());
  EXPECT_TRUE(j.get("d")->is_null());
  ASSERT_TRUE(j.get("e")->is_array());
  EXPECT_EQ(j.get("e")->array().size(), 3u);
  EXPECT_EQ(j.get("missing"), nullptr);
}

TEST(Json, ParsesEscapesAndNegativeExponents) {
  const Json j = Json::parse(R"({"s": "a\"b\né", "n": -1.5e-3})");
  EXPECT_EQ(j.get_string("s").value(), "a\"b\n\xC3\xA9");
  EXPECT_DOUBLE_EQ(j.get_number("n").value(), -1.5e-3);
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(Json::parse("{"), std::runtime_error);
  EXPECT_THROW(Json::parse("{\"a\": }"), std::runtime_error);
  EXPECT_THROW(Json::parse("[1, 2] trailing"), std::runtime_error);
  EXPECT_THROW(Json::parse("{\"a\": 1,}"), std::runtime_error);
}

TEST(Json, ErrorsCarryPosition) {
  try {
    Json::parse("{\n  \"a\": bogus\n}");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Json, RejectsDuplicateObjectKeysWithPosition) {
  // Last-key-wins would silently gate regressions against data the writer
  // never produced; a duplicate means corruption and must be loud.
  try {
    Json::parse("{\n  \"a\": 1,\n  \"a\": 2\n}");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("duplicate object key \"a\""), std::string::npos)
        << what;
    EXPECT_NE(what.find("line 3"), std::string::npos) << what;
  }
  // Same key in *different* objects is fine.
  EXPECT_NO_THROW(Json::parse(R"({"o1": {"a": 1}, "o2": {"a": 2}})"));
}

TEST(Json, RejectsTruncatedInput) {
  // A half-written manifest (crash mid-dump) must be a parse error, never a
  // partial document.
  EXPECT_THROW(Json::parse(R"({"a": 1, "b")"), std::runtime_error);
  EXPECT_THROW(Json::parse(R"({"a": "unterminated)"), std::runtime_error);
  EXPECT_THROW(Json::parse(R"([1, 2,)"), std::runtime_error);
  EXPECT_THROW(Json::parse("tru"), std::runtime_error);
  EXPECT_THROW(Json::parse("-"), std::runtime_error);
  EXPECT_THROW(Json::parse(R"({"a": 1)"), std::runtime_error);
  EXPECT_THROW(Json::parse(""), std::runtime_error);
}

TEST(Json, DepthCapStopsPathologicalNesting) {
  // ~300 unclosed arrays: must fail with a diagnostic, not a stack overflow.
  std::string deep(300, '[');
  EXPECT_THROW(Json::parse(deep), std::runtime_error);
  try {
    Json::parse(deep);
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("nesting"), std::string::npos);
  }

  // 100 levels is legal and must still parse.
  std::string ok(100, '[');
  ok += "1";
  ok.append(100, ']');
  EXPECT_NO_THROW(Json::parse(ok));
}

// --- evaluate() --------------------------------------------------------------

Json expectations() {
  return Json::parse(R"({
    "schema": "ecnd-expectations-v1",
    "tools": {
      "figX": {
        "observables": {
          "in_range":  {"min": 0.0, "max": 10.0},
          "soft":      {"min": 0.0, "max": 10.0, "warn_min": 4.0},
          "too_big":   {"min": 0.0, "max": 1.0},
          "absent":    {"min": 0.0, "max": 1.0},
          "undefined": {"min": 0.0, "max": 1.0},
          "flag":      {"equals": true}
        }
      }
    }
  })");
}

Json manifest() {
  return Json::parse(R"({
    "schema": "ecnd-manifest-v1",
    "tool": "figX",
    "observables": {
      "in_range": 5.0,
      "soft": 2.0,
      "too_big": 7.0,
      "undefined": null,
      "flag": true
    }
  })");
}

const Finding& find(const Report& r, const std::string& name) {
  for (const Finding& f : r.observables) {
    if (f.name == name) return f;
  }
  throw std::runtime_error("no finding named " + name);
}

TEST(Evaluate, StatusSemantics) {
  const Report r =
      evaluate(expectations(), {manifest()}, nullptr, nullptr, false);
  EXPECT_EQ(find(r, "in_range").status, Status::kPass);
  EXPECT_EQ(find(r, "soft").status, Status::kWarn);     // inside hard, below warn_min
  EXPECT_EQ(find(r, "too_big").status, Status::kFail);  // outside hard range
  EXPECT_EQ(find(r, "absent").status, Status::kFail);   // not in the manifest
  EXPECT_EQ(find(r, "undefined").status, Status::kFail);  // JSON null
  EXPECT_EQ(find(r, "flag").status, Status::kPass);     // equals matched
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.count(Status::kFail), 3);
}

TEST(Evaluate, MissingManifestIsOneFailure) {
  const Report r = evaluate(expectations(), {}, nullptr, nullptr, false);
  ASSERT_EQ(r.observables.size(), 1u);
  EXPECT_EQ(r.observables[0].status, Status::kFail);
  EXPECT_EQ(r.observables[0].name, "(manifest)");
}

TEST(Evaluate, NonManifestJsonIsIgnored) {
  const Json stray = Json::parse(R"({"schema": "ecnd-bench-v2"})");
  const Report with = evaluate(expectations(), {stray, manifest()}, nullptr,
                               nullptr, false);
  EXPECT_EQ(find(with, "in_range").status, Status::kPass);
}

TEST(Evaluate, PerfToleranceWarnsByDefaultFailsWhenStrict) {
  const Json baseline = Json::parse(R"({
    "schema": "ecnd-bench-v2",
    "metrics": {
      "fast": {"value": 100.0, "tolerance": 0.5},
      "slow": {"value": 100.0, "tolerance": 0.1}
    }
  })");
  const Json current = Json::parse(R"({
    "schema": "ecnd-bench-v2",
    "metrics": {
      "fast": {"value": 120.0},
      "slow": {"value": 150.0}
    }
  })");
  const Json empty_exp = Json::parse(R"({"schema": "ecnd-expectations-v1"})");

  const Report lenient =
      evaluate(empty_exp, {}, &baseline, &current, false);
  ASSERT_EQ(lenient.perf.size(), 2u);
  EXPECT_EQ(lenient.count(Status::kFail), 0);
  EXPECT_EQ(lenient.count(Status::kWarn), 1);  // slow is out of tolerance

  const Report strict = evaluate(empty_exp, {}, &baseline, &current, true);
  EXPECT_EQ(strict.count(Status::kFail), 1);
}

TEST(Evaluate, LegacyV1FlatBaselineStillCompares) {
  const Json baseline = Json::parse(
      R"({"schema": "ecnd-bench-v1", "ns_per_sim_event": 100.0})");
  const Json current = Json::parse(
      R"({"schema": "ecnd-bench-v1", "ns_per_sim_event": 130.0})");
  const Json empty_exp = Json::parse(R"({"schema": "ecnd-expectations-v1"})");
  const Report r = evaluate(empty_exp, {}, &baseline, &current, false, 0.5);
  ASSERT_EQ(r.perf.size(), 1u);
  EXPECT_EQ(r.perf[0].status, Status::kPass);  // 1.3x within default 50%
}

TEST(WriteMarkdown, VerdictLineMatchesReport) {
  const Report r =
      evaluate(expectations(), {manifest()}, nullptr, nullptr, false);
  std::ostringstream out;
  write_markdown(r, "meta line", out);
  const std::string text = out.str();
  EXPECT_NE(text.find("gate FAILS"), std::string::npos);
  EXPECT_NE(text.find("meta line"), std::string::npos);
  EXPECT_NE(text.find("`too_big`"), std::string::npos);
}

}  // namespace
}  // namespace ecnd::report
