#include "exp/scenarios.hpp"

#include <gtest/gtest.h>

namespace ecnd::exp {
namespace {

TEST(Scenarios, ProtocolNames) {
  EXPECT_STREQ(protocol_name(Protocol::kDcqcn), "DCQCN");
  EXPECT_STREQ(protocol_name(Protocol::kTimely), "TIMELY");
  EXPECT_STREQ(protocol_name(Protocol::kPatchedTimely), "Patched TIMELY");
}

TEST(Scenarios, LongFlowTracesCoverTheRun) {
  LongFlowConfig config;
  config.flows = 2;
  config.duration_s = 0.01;
  config.sample_interval_s = 1e-4;
  const auto result = run_long_flows(config);
  ASSERT_EQ(result.rate_gbps.size(), 2u);
  EXPECT_GT(result.queue_bytes.size(), 80u);
  EXPECT_NEAR(result.queue_bytes.last_time(), 0.01, 2e-3);
  EXPECT_GT(result.rate_gbps[0].size(), 80u);
}

TEST(Scenarios, StaggeredStartDelaysSecondFlow) {
  LongFlowConfig config;
  config.flows = 2;
  config.duration_s = 0.03;
  config.start_times_s = {0.0, 0.02};
  const auto result = run_long_flows(config);
  // Before 20 ms the second flow has no rate; after, it does.
  EXPECT_EQ(result.rate_gbps[1].value_at(0.01), 0.0);
  EXPECT_GT(result.rate_gbps[1].value_at(0.028), 0.1);
}

TEST(Scenarios, TimelyRunsDisableEcnMachinery) {
  LongFlowConfig config;
  config.protocol = Protocol::kTimely;
  config.flows = 2;
  config.duration_s = 0.02;
  config.initial_rate_fraction = {0.5, 0.5};
  const auto result = run_long_flows(config);
  EXPECT_EQ(result.cnps, 0u);  // no marks -> no CNPs
}

TEST(Scenarios, UtilizationBounded) {
  LongFlowConfig config;
  config.flows = 4;
  config.duration_s = 0.02;
  const auto result = run_long_flows(config);
  EXPECT_GT(result.utilization, 0.5);
  EXPECT_LE(result.utilization, 1.02);
}

TEST(Scenarios, FctConfigDefaultsEncodeSection51) {
  const auto timely = make_fct_config(Protocol::kTimely, 0.6);
  EXPECT_TRUE(timely.timely.burst_pacing);
  EXPECT_EQ(timely.timely.segment, kilobytes(64.0));
  EXPECT_TRUE(timely.patched.burst_pacing);
  EXPECT_EQ(timely.patched.segment, kilobytes(16.0));
  EXPECT_DOUBLE_EQ(timely.load, 0.6);
  EXPECT_TRUE(timely.pfc.enabled);
}

TEST(Scenarios, FctExperimentSmallRun) {
  auto config = make_fct_config(Protocol::kDcqcn, 0.4);
  config.num_flows = 200;
  config.seed = 5;
  const auto result = run_fct_experiment(config);
  EXPECT_TRUE(result.all_completed);
  EXPECT_GT(result.small.count, 50u);
  EXPECT_GT(result.small.median_us, 0.0);
  EXPECT_LE(result.small.median_us, result.small.p90_us);
  EXPECT_LE(result.small.p90_us, result.small.p99_us);
  EXPECT_FALSE(result.queue_bytes.empty());
}

TEST(Scenarios, DifferentSeedsDifferentTraffic) {
  auto a = make_fct_config(Protocol::kDcqcn, 0.4);
  a.num_flows = 100;
  a.seed = 1;
  auto b = a;
  b.seed = 2;
  const auto ra = run_fct_experiment(a);
  const auto rb = run_fct_experiment(b);
  EXPECT_NE(ra.small.median_us, rb.small.median_us);
}

TEST(Scenarios, SameSeedReproducesExactly) {
  auto config = make_fct_config(Protocol::kPatchedTimely, 0.5);
  config.num_flows = 150;
  config.seed = 42;
  const auto r1 = run_fct_experiment(config);
  const auto r2 = run_fct_experiment(config);
  EXPECT_EQ(r1.small.count, r2.small.count);
  EXPECT_DOUBLE_EQ(r1.small.median_us, r2.small.median_us);
  EXPECT_DOUBLE_EQ(r1.overall.p99_us, r2.overall.p99_us);
}

}  // namespace
}  // namespace ecnd::exp
