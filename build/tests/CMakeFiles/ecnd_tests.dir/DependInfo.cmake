
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_control.cpp" "tests/CMakeFiles/ecnd_tests.dir/test_control.cpp.o" "gcc" "tests/CMakeFiles/ecnd_tests.dir/test_control.cpp.o.d"
  "/root/repo/tests/test_core_rng.cpp" "tests/CMakeFiles/ecnd_tests.dir/test_core_rng.cpp.o" "gcc" "tests/CMakeFiles/ecnd_tests.dir/test_core_rng.cpp.o.d"
  "/root/repo/tests/test_core_stats.cpp" "tests/CMakeFiles/ecnd_tests.dir/test_core_stats.cpp.o" "gcc" "tests/CMakeFiles/ecnd_tests.dir/test_core_stats.cpp.o.d"
  "/root/repo/tests/test_core_table.cpp" "tests/CMakeFiles/ecnd_tests.dir/test_core_table.cpp.o" "gcc" "tests/CMakeFiles/ecnd_tests.dir/test_core_table.cpp.o.d"
  "/root/repo/tests/test_core_timeseries.cpp" "tests/CMakeFiles/ecnd_tests.dir/test_core_timeseries.cpp.o" "gcc" "tests/CMakeFiles/ecnd_tests.dir/test_core_timeseries.cpp.o.d"
  "/root/repo/tests/test_cross_layer.cpp" "tests/CMakeFiles/ecnd_tests.dir/test_cross_layer.cpp.o" "gcc" "tests/CMakeFiles/ecnd_tests.dir/test_cross_layer.cpp.o.d"
  "/root/repo/tests/test_dcqcn_fluid.cpp" "tests/CMakeFiles/ecnd_tests.dir/test_dcqcn_fluid.cpp.o" "gcc" "tests/CMakeFiles/ecnd_tests.dir/test_dcqcn_fluid.cpp.o.d"
  "/root/repo/tests/test_dde_solver.cpp" "tests/CMakeFiles/ecnd_tests.dir/test_dde_solver.cpp.o" "gcc" "tests/CMakeFiles/ecnd_tests.dir/test_dde_solver.cpp.o.d"
  "/root/repo/tests/test_exp.cpp" "tests/CMakeFiles/ecnd_tests.dir/test_exp.cpp.o" "gcc" "tests/CMakeFiles/ecnd_tests.dir/test_exp.cpp.o.d"
  "/root/repo/tests/test_ext_pi_parkinglot.cpp" "tests/CMakeFiles/ecnd_tests.dir/test_ext_pi_parkinglot.cpp.o" "gcc" "tests/CMakeFiles/ecnd_tests.dir/test_ext_pi_parkinglot.cpp.o.d"
  "/root/repo/tests/test_jitter.cpp" "tests/CMakeFiles/ecnd_tests.dir/test_jitter.cpp.o" "gcc" "tests/CMakeFiles/ecnd_tests.dir/test_jitter.cpp.o.d"
  "/root/repo/tests/test_pi_fluid.cpp" "tests/CMakeFiles/ecnd_tests.dir/test_pi_fluid.cpp.o" "gcc" "tests/CMakeFiles/ecnd_tests.dir/test_pi_fluid.cpp.o.d"
  "/root/repo/tests/test_proto_dcqcn.cpp" "tests/CMakeFiles/ecnd_tests.dir/test_proto_dcqcn.cpp.o" "gcc" "tests/CMakeFiles/ecnd_tests.dir/test_proto_dcqcn.cpp.o.d"
  "/root/repo/tests/test_proto_timely.cpp" "tests/CMakeFiles/ecnd_tests.dir/test_proto_timely.cpp.o" "gcc" "tests/CMakeFiles/ecnd_tests.dir/test_proto_timely.cpp.o.d"
  "/root/repo/tests/test_sim_core.cpp" "tests/CMakeFiles/ecnd_tests.dir/test_sim_core.cpp.o" "gcc" "tests/CMakeFiles/ecnd_tests.dir/test_sim_core.cpp.o.d"
  "/root/repo/tests/test_sim_net.cpp" "tests/CMakeFiles/ecnd_tests.dir/test_sim_net.cpp.o" "gcc" "tests/CMakeFiles/ecnd_tests.dir/test_sim_net.cpp.o.d"
  "/root/repo/tests/test_timely_fluid.cpp" "tests/CMakeFiles/ecnd_tests.dir/test_timely_fluid.cpp.o" "gcc" "tests/CMakeFiles/ecnd_tests.dir/test_timely_fluid.cpp.o.d"
  "/root/repo/tests/test_workload.cpp" "tests/CMakeFiles/ecnd_tests.dir/test_workload.cpp.o" "gcc" "tests/CMakeFiles/ecnd_tests.dir/test_workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/ecnd_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ecnd_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/ecnd_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ecnd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/control/CMakeFiles/ecnd_control.dir/DependInfo.cmake"
  "/root/repo/build/src/fluid/CMakeFiles/ecnd_fluid.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ecnd_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
