# Empty dependencies file for ecnd_tests.
# This may be replaced when dependencies are built.
