# Empty dependencies file for fct_study.
# This may be replaced when dependencies are built.
