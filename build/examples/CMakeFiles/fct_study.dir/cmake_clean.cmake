file(REMOVE_RECURSE
  "CMakeFiles/fct_study.dir/fct_study.cpp.o"
  "CMakeFiles/fct_study.dir/fct_study.cpp.o.d"
  "fct_study"
  "fct_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fct_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
