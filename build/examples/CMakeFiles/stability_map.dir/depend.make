# Empty dependencies file for stability_map.
# This may be replaced when dependencies are built.
