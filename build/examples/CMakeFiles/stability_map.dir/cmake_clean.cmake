file(REMOVE_RECURSE
  "CMakeFiles/stability_map.dir/stability_map.cpp.o"
  "CMakeFiles/stability_map.dir/stability_map.cpp.o.d"
  "stability_map"
  "stability_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stability_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
