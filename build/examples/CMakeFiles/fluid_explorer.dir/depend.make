# Empty dependencies file for fluid_explorer.
# This may be replaced when dependencies are built.
