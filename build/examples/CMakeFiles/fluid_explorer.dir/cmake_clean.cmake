file(REMOVE_RECURSE
  "CMakeFiles/fluid_explorer.dir/fluid_explorer.cpp.o"
  "CMakeFiles/fluid_explorer.dir/fluid_explorer.cpp.o.d"
  "fluid_explorer"
  "fluid_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fluid_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
