# Empty dependencies file for bench_fig09_timely_unfairness.
# This may be replaced when dependencies are built.
