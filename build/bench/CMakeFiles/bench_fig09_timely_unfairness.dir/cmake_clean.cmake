file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_timely_unfairness.dir/bench_fig09_timely_unfairness.cpp.o"
  "CMakeFiles/bench_fig09_timely_unfairness.dir/bench_fig09_timely_unfairness.cpp.o.d"
  "bench_fig09_timely_unfairness"
  "bench_fig09_timely_unfairness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_timely_unfairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
