file(REMOVE_RECURSE
  "CMakeFiles/bench_fig20_jitter.dir/bench_fig20_jitter.cpp.o"
  "CMakeFiles/bench_fig20_jitter.dir/bench_fig20_jitter.cpp.o.d"
  "bench_fig20_jitter"
  "bench_fig20_jitter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig20_jitter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
