# Empty compiler generated dependencies file for bench_fig20_jitter.
# This may be replaced when dependencies are built.
