# Empty dependencies file for bench_fig15_fct_cdf.
# This may be replaced when dependencies are built.
