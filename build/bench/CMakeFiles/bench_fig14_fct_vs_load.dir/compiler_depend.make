# Empty compiler generated dependencies file for bench_fig14_fct_vs_load.
# This may be replaced when dependencies are built.
