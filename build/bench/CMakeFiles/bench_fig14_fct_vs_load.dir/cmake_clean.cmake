file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_fct_vs_load.dir/bench_fig14_fct_vs_load.cpp.o"
  "CMakeFiles/bench_fig14_fct_vs_load.dir/bench_fig14_fct_vs_load.cpp.o.d"
  "bench_fig14_fct_vs_load"
  "bench_fig14_fct_vs_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_fct_vs_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
