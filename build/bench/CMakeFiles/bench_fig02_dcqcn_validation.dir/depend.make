# Empty dependencies file for bench_fig02_dcqcn_validation.
# This may be replaced when dependencies are built.
