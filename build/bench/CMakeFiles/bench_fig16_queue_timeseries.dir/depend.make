# Empty dependencies file for bench_fig16_queue_timeseries.
# This may be replaced when dependencies are built.
