file(REMOVE_RECURSE
  "CMakeFiles/bench_tab_thm2_convergence.dir/bench_tab_thm2_convergence.cpp.o"
  "CMakeFiles/bench_tab_thm2_convergence.dir/bench_tab_thm2_convergence.cpp.o.d"
  "bench_tab_thm2_convergence"
  "bench_tab_thm2_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab_thm2_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
