
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_tab_thm2_convergence.cpp" "bench/CMakeFiles/bench_tab_thm2_convergence.dir/bench_tab_thm2_convergence.cpp.o" "gcc" "bench/CMakeFiles/bench_tab_thm2_convergence.dir/bench_tab_thm2_convergence.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/ecnd_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ecnd_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/ecnd_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ecnd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/control/CMakeFiles/ecnd_control.dir/DependInfo.cmake"
  "/root/repo/build/src/fluid/CMakeFiles/ecnd_fluid.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ecnd_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
