# Empty dependencies file for bench_tab_thm2_convergence.
# This may be replaced when dependencies are built.
