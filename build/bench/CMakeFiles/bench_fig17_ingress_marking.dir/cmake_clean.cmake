file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_ingress_marking.dir/bench_fig17_ingress_marking.cpp.o"
  "CMakeFiles/bench_fig17_ingress_marking.dir/bench_fig17_ingress_marking.cpp.o.d"
  "bench_fig17_ingress_marking"
  "bench_fig17_ingress_marking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_ingress_marking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
