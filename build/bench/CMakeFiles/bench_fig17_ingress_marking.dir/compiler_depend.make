# Empty compiler generated dependencies file for bench_fig17_ingress_marking.
# This may be replaced when dependencies are built.
