# Empty compiler generated dependencies file for bench_fig08_timely_validation.
# This may be replaced when dependencies are built.
