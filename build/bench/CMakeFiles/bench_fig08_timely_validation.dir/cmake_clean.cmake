file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_timely_validation.dir/bench_fig08_timely_validation.cpp.o"
  "CMakeFiles/bench_fig08_timely_validation.dir/bench_fig08_timely_validation.cpp.o.d"
  "bench_fig08_timely_validation"
  "bench_fig08_timely_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_timely_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
