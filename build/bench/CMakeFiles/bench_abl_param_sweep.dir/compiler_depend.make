# Empty compiler generated dependencies file for bench_abl_param_sweep.
# This may be replaced when dependencies are built.
