file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_param_sweep.dir/bench_abl_param_sweep.cpp.o"
  "CMakeFiles/bench_abl_param_sweep.dir/bench_abl_param_sweep.cpp.o.d"
  "bench_abl_param_sweep"
  "bench_abl_param_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_param_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
