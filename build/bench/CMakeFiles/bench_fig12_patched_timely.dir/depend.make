# Empty dependencies file for bench_fig12_patched_timely.
# This may be replaced when dependencies are built.
