file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_patched_timely.dir/bench_fig12_patched_timely.cpp.o"
  "CMakeFiles/bench_fig12_patched_timely.dir/bench_fig12_patched_timely.cpp.o.d"
  "bench_fig12_patched_timely"
  "bench_fig12_patched_timely.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_patched_timely.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
