file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_dcqcn_delay_stability.dir/bench_fig04_dcqcn_delay_stability.cpp.o"
  "CMakeFiles/bench_fig04_dcqcn_delay_stability.dir/bench_fig04_dcqcn_delay_stability.cpp.o.d"
  "bench_fig04_dcqcn_delay_stability"
  "bench_fig04_dcqcn_delay_stability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_dcqcn_delay_stability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
