# Empty compiler generated dependencies file for bench_fig04_dcqcn_delay_stability.
# This may be replaced when dependencies are built.
