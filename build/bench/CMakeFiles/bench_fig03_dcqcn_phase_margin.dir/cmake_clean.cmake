file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_dcqcn_phase_margin.dir/bench_fig03_dcqcn_phase_margin.cpp.o"
  "CMakeFiles/bench_fig03_dcqcn_phase_margin.dir/bench_fig03_dcqcn_phase_margin.cpp.o.d"
  "bench_fig03_dcqcn_phase_margin"
  "bench_fig03_dcqcn_phase_margin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_dcqcn_phase_margin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
