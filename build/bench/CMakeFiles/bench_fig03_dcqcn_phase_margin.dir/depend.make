# Empty dependencies file for bench_fig03_dcqcn_phase_margin.
# This may be replaced when dependencies are built.
