# Empty compiler generated dependencies file for bench_ext_pi_packet.
# This may be replaced when dependencies are built.
