file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_pi_packet.dir/bench_ext_pi_packet.cpp.o"
  "CMakeFiles/bench_ext_pi_packet.dir/bench_ext_pi_packet.cpp.o.d"
  "bench_ext_pi_packet"
  "bench_ext_pi_packet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_pi_packet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
