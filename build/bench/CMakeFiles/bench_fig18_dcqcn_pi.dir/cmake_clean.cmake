file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_dcqcn_pi.dir/bench_fig18_dcqcn_pi.cpp.o"
  "CMakeFiles/bench_fig18_dcqcn_pi.dir/bench_fig18_dcqcn_pi.cpp.o.d"
  "bench_fig18_dcqcn_pi"
  "bench_fig18_dcqcn_pi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_dcqcn_pi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
