# Empty compiler generated dependencies file for bench_fig18_dcqcn_pi.
# This may be replaced when dependencies are built.
