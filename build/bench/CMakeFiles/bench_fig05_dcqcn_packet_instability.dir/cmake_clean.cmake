file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_dcqcn_packet_instability.dir/bench_fig05_dcqcn_packet_instability.cpp.o"
  "CMakeFiles/bench_fig05_dcqcn_packet_instability.dir/bench_fig05_dcqcn_packet_instability.cpp.o.d"
  "bench_fig05_dcqcn_packet_instability"
  "bench_fig05_dcqcn_packet_instability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_dcqcn_packet_instability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
