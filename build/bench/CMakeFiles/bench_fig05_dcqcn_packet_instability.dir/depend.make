# Empty dependencies file for bench_fig05_dcqcn_packet_instability.
# This may be replaced when dependencies are built.
