# Empty compiler generated dependencies file for bench_fig10_timely_burst_pacing.
# This may be replaced when dependencies are built.
