file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_timely_burst_pacing.dir/bench_fig10_timely_burst_pacing.cpp.o"
  "CMakeFiles/bench_fig10_timely_burst_pacing.dir/bench_fig10_timely_burst_pacing.cpp.o.d"
  "bench_fig10_timely_burst_pacing"
  "bench_fig10_timely_burst_pacing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_timely_burst_pacing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
