# Empty compiler generated dependencies file for bench_ext_parking_lot.
# This may be replaced when dependencies are built.
