file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_parking_lot.dir/bench_ext_parking_lot.cpp.o"
  "CMakeFiles/bench_ext_parking_lot.dir/bench_ext_parking_lot.cpp.o.d"
  "bench_ext_parking_lot"
  "bench_ext_parking_lot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_parking_lot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
