# Empty dependencies file for bench_fig11_patched_phase_margin.
# This may be replaced when dependencies are built.
