# Empty dependencies file for bench_fig19_timely_pi_unfair.
# This may be replaced when dependencies are built.
