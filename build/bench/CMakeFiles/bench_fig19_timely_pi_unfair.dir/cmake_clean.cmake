file(REMOVE_RECURSE
  "CMakeFiles/bench_fig19_timely_pi_unfair.dir/bench_fig19_timely_pi_unfair.cpp.o"
  "CMakeFiles/bench_fig19_timely_pi_unfair.dir/bench_fig19_timely_pi_unfair.cpp.o.d"
  "bench_fig19_timely_pi_unfair"
  "bench_fig19_timely_pi_unfair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_timely_pi_unfair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
