file(REMOVE_RECURSE
  "CMakeFiles/bench_tab_eq14_fixed_point.dir/bench_tab_eq14_fixed_point.cpp.o"
  "CMakeFiles/bench_tab_eq14_fixed_point.dir/bench_tab_eq14_fixed_point.cpp.o.d"
  "bench_tab_eq14_fixed_point"
  "bench_tab_eq14_fixed_point.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab_eq14_fixed_point.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
