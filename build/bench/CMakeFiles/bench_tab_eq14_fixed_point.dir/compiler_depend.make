# Empty compiler generated dependencies file for bench_tab_eq14_fixed_point.
# This may be replaced when dependencies are built.
