
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/fct_stats.cpp" "src/workload/CMakeFiles/ecnd_workload.dir/fct_stats.cpp.o" "gcc" "src/workload/CMakeFiles/ecnd_workload.dir/fct_stats.cpp.o.d"
  "/root/repo/src/workload/flow_size.cpp" "src/workload/CMakeFiles/ecnd_workload.dir/flow_size.cpp.o" "gcc" "src/workload/CMakeFiles/ecnd_workload.dir/flow_size.cpp.o.d"
  "/root/repo/src/workload/traffic.cpp" "src/workload/CMakeFiles/ecnd_workload.dir/traffic.cpp.o" "gcc" "src/workload/CMakeFiles/ecnd_workload.dir/traffic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ecnd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ecnd_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
