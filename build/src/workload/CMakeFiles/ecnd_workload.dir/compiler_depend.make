# Empty compiler generated dependencies file for ecnd_workload.
# This may be replaced when dependencies are built.
