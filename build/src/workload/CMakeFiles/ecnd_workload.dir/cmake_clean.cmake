file(REMOVE_RECURSE
  "CMakeFiles/ecnd_workload.dir/fct_stats.cpp.o"
  "CMakeFiles/ecnd_workload.dir/fct_stats.cpp.o.d"
  "CMakeFiles/ecnd_workload.dir/flow_size.cpp.o"
  "CMakeFiles/ecnd_workload.dir/flow_size.cpp.o.d"
  "CMakeFiles/ecnd_workload.dir/traffic.cpp.o"
  "CMakeFiles/ecnd_workload.dir/traffic.cpp.o.d"
  "libecnd_workload.a"
  "libecnd_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecnd_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
