file(REMOVE_RECURSE
  "libecnd_workload.a"
)
