file(REMOVE_RECURSE
  "libecnd_control.a"
)
