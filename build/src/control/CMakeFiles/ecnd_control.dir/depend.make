# Empty dependencies file for ecnd_control.
# This may be replaced when dependencies are built.
