
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/control/dcqcn_analysis.cpp" "src/control/CMakeFiles/ecnd_control.dir/dcqcn_analysis.cpp.o" "gcc" "src/control/CMakeFiles/ecnd_control.dir/dcqcn_analysis.cpp.o.d"
  "/root/repo/src/control/discrete_dcqcn.cpp" "src/control/CMakeFiles/ecnd_control.dir/discrete_dcqcn.cpp.o" "gcc" "src/control/CMakeFiles/ecnd_control.dir/discrete_dcqcn.cpp.o.d"
  "/root/repo/src/control/linearize.cpp" "src/control/CMakeFiles/ecnd_control.dir/linearize.cpp.o" "gcc" "src/control/CMakeFiles/ecnd_control.dir/linearize.cpp.o.d"
  "/root/repo/src/control/matrix.cpp" "src/control/CMakeFiles/ecnd_control.dir/matrix.cpp.o" "gcc" "src/control/CMakeFiles/ecnd_control.dir/matrix.cpp.o.d"
  "/root/repo/src/control/phase_margin.cpp" "src/control/CMakeFiles/ecnd_control.dir/phase_margin.cpp.o" "gcc" "src/control/CMakeFiles/ecnd_control.dir/phase_margin.cpp.o.d"
  "/root/repo/src/control/timely_analysis.cpp" "src/control/CMakeFiles/ecnd_control.dir/timely_analysis.cpp.o" "gcc" "src/control/CMakeFiles/ecnd_control.dir/timely_analysis.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ecnd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fluid/CMakeFiles/ecnd_fluid.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
