file(REMOVE_RECURSE
  "CMakeFiles/ecnd_control.dir/dcqcn_analysis.cpp.o"
  "CMakeFiles/ecnd_control.dir/dcqcn_analysis.cpp.o.d"
  "CMakeFiles/ecnd_control.dir/discrete_dcqcn.cpp.o"
  "CMakeFiles/ecnd_control.dir/discrete_dcqcn.cpp.o.d"
  "CMakeFiles/ecnd_control.dir/linearize.cpp.o"
  "CMakeFiles/ecnd_control.dir/linearize.cpp.o.d"
  "CMakeFiles/ecnd_control.dir/matrix.cpp.o"
  "CMakeFiles/ecnd_control.dir/matrix.cpp.o.d"
  "CMakeFiles/ecnd_control.dir/phase_margin.cpp.o"
  "CMakeFiles/ecnd_control.dir/phase_margin.cpp.o.d"
  "CMakeFiles/ecnd_control.dir/timely_analysis.cpp.o"
  "CMakeFiles/ecnd_control.dir/timely_analysis.cpp.o.d"
  "libecnd_control.a"
  "libecnd_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecnd_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
