# Empty compiler generated dependencies file for ecnd_exp.
# This may be replaced when dependencies are built.
