file(REMOVE_RECURSE
  "CMakeFiles/ecnd_exp.dir/scenarios.cpp.o"
  "CMakeFiles/ecnd_exp.dir/scenarios.cpp.o.d"
  "libecnd_exp.a"
  "libecnd_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecnd_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
