file(REMOVE_RECURSE
  "libecnd_exp.a"
)
