
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fluid/dcqcn_model.cpp" "src/fluid/CMakeFiles/ecnd_fluid.dir/dcqcn_model.cpp.o" "gcc" "src/fluid/CMakeFiles/ecnd_fluid.dir/dcqcn_model.cpp.o.d"
  "/root/repo/src/fluid/dde_solver.cpp" "src/fluid/CMakeFiles/ecnd_fluid.dir/dde_solver.cpp.o" "gcc" "src/fluid/CMakeFiles/ecnd_fluid.dir/dde_solver.cpp.o.d"
  "/root/repo/src/fluid/fluid_model.cpp" "src/fluid/CMakeFiles/ecnd_fluid.dir/fluid_model.cpp.o" "gcc" "src/fluid/CMakeFiles/ecnd_fluid.dir/fluid_model.cpp.o.d"
  "/root/repo/src/fluid/jitter.cpp" "src/fluid/CMakeFiles/ecnd_fluid.dir/jitter.cpp.o" "gcc" "src/fluid/CMakeFiles/ecnd_fluid.dir/jitter.cpp.o.d"
  "/root/repo/src/fluid/pi_models.cpp" "src/fluid/CMakeFiles/ecnd_fluid.dir/pi_models.cpp.o" "gcc" "src/fluid/CMakeFiles/ecnd_fluid.dir/pi_models.cpp.o.d"
  "/root/repo/src/fluid/timely_model.cpp" "src/fluid/CMakeFiles/ecnd_fluid.dir/timely_model.cpp.o" "gcc" "src/fluid/CMakeFiles/ecnd_fluid.dir/timely_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ecnd_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
