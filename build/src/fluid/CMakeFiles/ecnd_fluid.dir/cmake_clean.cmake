file(REMOVE_RECURSE
  "CMakeFiles/ecnd_fluid.dir/dcqcn_model.cpp.o"
  "CMakeFiles/ecnd_fluid.dir/dcqcn_model.cpp.o.d"
  "CMakeFiles/ecnd_fluid.dir/dde_solver.cpp.o"
  "CMakeFiles/ecnd_fluid.dir/dde_solver.cpp.o.d"
  "CMakeFiles/ecnd_fluid.dir/fluid_model.cpp.o"
  "CMakeFiles/ecnd_fluid.dir/fluid_model.cpp.o.d"
  "CMakeFiles/ecnd_fluid.dir/jitter.cpp.o"
  "CMakeFiles/ecnd_fluid.dir/jitter.cpp.o.d"
  "CMakeFiles/ecnd_fluid.dir/pi_models.cpp.o"
  "CMakeFiles/ecnd_fluid.dir/pi_models.cpp.o.d"
  "CMakeFiles/ecnd_fluid.dir/timely_model.cpp.o"
  "CMakeFiles/ecnd_fluid.dir/timely_model.cpp.o.d"
  "libecnd_fluid.a"
  "libecnd_fluid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecnd_fluid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
