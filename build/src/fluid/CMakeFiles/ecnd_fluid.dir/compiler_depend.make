# Empty compiler generated dependencies file for ecnd_fluid.
# This may be replaced when dependencies are built.
