file(REMOVE_RECURSE
  "libecnd_fluid.a"
)
