file(REMOVE_RECURSE
  "libecnd_core.a"
)
