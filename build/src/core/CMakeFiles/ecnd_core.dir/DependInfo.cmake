
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/rng.cpp" "src/core/CMakeFiles/ecnd_core.dir/rng.cpp.o" "gcc" "src/core/CMakeFiles/ecnd_core.dir/rng.cpp.o.d"
  "/root/repo/src/core/stats.cpp" "src/core/CMakeFiles/ecnd_core.dir/stats.cpp.o" "gcc" "src/core/CMakeFiles/ecnd_core.dir/stats.cpp.o.d"
  "/root/repo/src/core/table.cpp" "src/core/CMakeFiles/ecnd_core.dir/table.cpp.o" "gcc" "src/core/CMakeFiles/ecnd_core.dir/table.cpp.o.d"
  "/root/repo/src/core/timeseries.cpp" "src/core/CMakeFiles/ecnd_core.dir/timeseries.cpp.o" "gcc" "src/core/CMakeFiles/ecnd_core.dir/timeseries.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
