file(REMOVE_RECURSE
  "CMakeFiles/ecnd_core.dir/rng.cpp.o"
  "CMakeFiles/ecnd_core.dir/rng.cpp.o.d"
  "CMakeFiles/ecnd_core.dir/stats.cpp.o"
  "CMakeFiles/ecnd_core.dir/stats.cpp.o.d"
  "CMakeFiles/ecnd_core.dir/table.cpp.o"
  "CMakeFiles/ecnd_core.dir/table.cpp.o.d"
  "CMakeFiles/ecnd_core.dir/timeseries.cpp.o"
  "CMakeFiles/ecnd_core.dir/timeseries.cpp.o.d"
  "libecnd_core.a"
  "libecnd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecnd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
