# Empty dependencies file for ecnd_core.
# This may be replaced when dependencies are built.
