file(REMOVE_RECURSE
  "CMakeFiles/ecnd_sim.dir/host.cpp.o"
  "CMakeFiles/ecnd_sim.dir/host.cpp.o.d"
  "CMakeFiles/ecnd_sim.dir/network.cpp.o"
  "CMakeFiles/ecnd_sim.dir/network.cpp.o.d"
  "CMakeFiles/ecnd_sim.dir/port.cpp.o"
  "CMakeFiles/ecnd_sim.dir/port.cpp.o.d"
  "CMakeFiles/ecnd_sim.dir/simulator.cpp.o"
  "CMakeFiles/ecnd_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/ecnd_sim.dir/switch.cpp.o"
  "CMakeFiles/ecnd_sim.dir/switch.cpp.o.d"
  "libecnd_sim.a"
  "libecnd_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecnd_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
