# Empty dependencies file for ecnd_sim.
# This may be replaced when dependencies are built.
