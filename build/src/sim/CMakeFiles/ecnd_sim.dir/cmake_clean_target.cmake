file(REMOVE_RECURSE
  "libecnd_sim.a"
)
