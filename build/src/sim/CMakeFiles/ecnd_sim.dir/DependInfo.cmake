
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/host.cpp" "src/sim/CMakeFiles/ecnd_sim.dir/host.cpp.o" "gcc" "src/sim/CMakeFiles/ecnd_sim.dir/host.cpp.o.d"
  "/root/repo/src/sim/network.cpp" "src/sim/CMakeFiles/ecnd_sim.dir/network.cpp.o" "gcc" "src/sim/CMakeFiles/ecnd_sim.dir/network.cpp.o.d"
  "/root/repo/src/sim/port.cpp" "src/sim/CMakeFiles/ecnd_sim.dir/port.cpp.o" "gcc" "src/sim/CMakeFiles/ecnd_sim.dir/port.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/sim/CMakeFiles/ecnd_sim.dir/simulator.cpp.o" "gcc" "src/sim/CMakeFiles/ecnd_sim.dir/simulator.cpp.o.d"
  "/root/repo/src/sim/switch.cpp" "src/sim/CMakeFiles/ecnd_sim.dir/switch.cpp.o" "gcc" "src/sim/CMakeFiles/ecnd_sim.dir/switch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ecnd_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
