file(REMOVE_RECURSE
  "CMakeFiles/ecnd_proto.dir/dcqcn/rp.cpp.o"
  "CMakeFiles/ecnd_proto.dir/dcqcn/rp.cpp.o.d"
  "CMakeFiles/ecnd_proto.dir/factories.cpp.o"
  "CMakeFiles/ecnd_proto.dir/factories.cpp.o.d"
  "CMakeFiles/ecnd_proto.dir/timely/timely.cpp.o"
  "CMakeFiles/ecnd_proto.dir/timely/timely.cpp.o.d"
  "libecnd_proto.a"
  "libecnd_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecnd_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
