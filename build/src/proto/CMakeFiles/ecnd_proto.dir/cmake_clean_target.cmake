file(REMOVE_RECURSE
  "libecnd_proto.a"
)
