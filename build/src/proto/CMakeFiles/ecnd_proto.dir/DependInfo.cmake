
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/proto/dcqcn/rp.cpp" "src/proto/CMakeFiles/ecnd_proto.dir/dcqcn/rp.cpp.o" "gcc" "src/proto/CMakeFiles/ecnd_proto.dir/dcqcn/rp.cpp.o.d"
  "/root/repo/src/proto/factories.cpp" "src/proto/CMakeFiles/ecnd_proto.dir/factories.cpp.o" "gcc" "src/proto/CMakeFiles/ecnd_proto.dir/factories.cpp.o.d"
  "/root/repo/src/proto/timely/timely.cpp" "src/proto/CMakeFiles/ecnd_proto.dir/timely/timely.cpp.o" "gcc" "src/proto/CMakeFiles/ecnd_proto.dir/timely/timely.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ecnd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ecnd_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
