# Empty compiler generated dependencies file for ecnd_proto.
# This may be replaced when dependencies are built.
