// fluid_explorer: integrate any of the paper's fluid models from the command
// line and dump the queue/rate traces as CSV — the fastest way to explore
// parameter space (the reason the paper built fluid models at all).
//
// Usage:
//   fluid_explorer dcqcn   [N] [feedback_delay_us] [duration_s]
//   fluid_explorer timely  [N] [jitter_us]         [duration_s]
//   fluid_explorer patched [N] [jitter_us]         [duration_s]
//   fluid_explorer dcqcn-pi [N] [qref_pkts]        [duration_s]
//
// Output: CSV on stdout with columns t, queue_kb, rate0_gbps, rate1_gbps...

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "fluid/dcqcn_model.hpp"
#include "fluid/fluid_model.hpp"
#include "fluid/pi_models.hpp"
#include "fluid/timely_model.hpp"

using namespace ecnd;

int main(int argc, char** argv) {
  const char* which = argc > 1 ? argv[1] : "dcqcn";
  const int n = argc > 2 ? std::atoi(argv[2]) : 2;
  const double knob = argc > 3 ? std::atof(argv[3]) : 4.0;
  const double duration = argc > 4 ? std::atof(argv[4]) : 0.1;

  std::unique_ptr<fluid::FluidModel> model;
  if (std::strcmp(which, "dcqcn") == 0) {
    fluid::DcqcnFluidParams p;
    p.num_flows = n;
    p.feedback_delay = knob * 1e-6;
    model = std::make_unique<fluid::DcqcnFluidModel>(p);
  } else if (std::strcmp(which, "timely") == 0) {
    fluid::TimelyFluidParams p;
    p.num_flows = n;
    if (knob > 0.0) p.feedback_jitter = fluid::JitterProcess(knob * 1e-6, 20e-6, 1);
    model = std::make_unique<fluid::TimelyFluidModel>(p);
  } else if (std::strcmp(which, "patched") == 0) {
    fluid::TimelyFluidParams p = fluid::patched_timely_defaults();
    p.num_flows = n;
    if (knob > 0.0) p.feedback_jitter = fluid::JitterProcess(knob * 1e-6, 20e-6, 1);
    model = std::make_unique<fluid::PatchedTimelyFluidModel>(p);
  } else if (std::strcmp(which, "dcqcn-pi") == 0) {
    fluid::DcqcnFluidParams p;
    p.num_flows = n;
    fluid::PiControllerParams pi;
    if (knob > 0.0) pi.qref_pkts = knob;
    model = std::make_unique<fluid::DcqcnPiFluidModel>(p, pi);
  } else {
    std::fprintf(stderr, "unknown model '%s'\n", which);
    return 1;
  }

  const auto run = fluid::simulate(*model, duration, duration / 2000.0);

  std::printf("t_s,queue_kb");
  for (int i = 0; i < model->num_flows(); ++i) std::printf(",rate%d_gbps", i);
  std::printf("\n");
  for (std::size_t s = 0; s < run.queue_bytes.size(); ++s) {
    const double t = run.queue_bytes[s].t;
    std::printf("%.6f,%.3f", t, run.queue_bytes[s].value / 1e3);
    for (const auto& series : run.flow_rate_gbps) {
      std::printf(",%.4f", series.value_at(t));
    }
    std::printf("\n");
  }
  return 0;
}
