// fault_study: the paper's Figure-20 question — what happens to DCQCN (ECN
// feedback) and TIMELY (delay feedback) when the feedback channel degrades —
// pushed past jitter into outright loss: each run injects seeded CNP loss
// (DCQCN) or ACK loss (TIMELY) at 0.1%–5% and reports fairness, utilization
// and queue behavior. DCQCN's coalesced CNPs make a lost notification cost
// one 50µs window at most, so it degrades gracefully; TIMELY has no fixed
// point (Theorem 3), so rates that loss pushed apart have nothing pulling
// them back together and fairness collapses.
//
// Runs are deterministic: the fault injector draws from its own seeded RNG
// stream, so the same arguments always produce byte-identical CSV. The
// (protocol, loss) grid runs on the parallel sweep engine — each run owns
// its network, injector and traces — and rows print from pre-sized slots,
// so the CSV is also byte-identical at any ECND_THREADS.
//
// Usage: fault_study [flows] [duration_s] [seed]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/parallel.hpp"
#include "core/stats.hpp"
#include "exp/scenarios.hpp"
#include "obs/manifest.hpp"

using namespace ecnd;

namespace {

struct Row {
  exp::Protocol protocol;
  double loss;
  double jain = 0.0;
  double min_rate_gbps = 0.0;
  double max_rate_gbps = 0.0;
  double utilization = 0.0;
  double queue_mean_kb = 0.0;
  double queue_max_kb = 0.0;
  std::uint64_t feedback_dropped = 0;
};

Row run_one(exp::Protocol protocol, double loss, int flows, double duration_s,
            std::uint64_t seed) {
  exp::LongFlowConfig config;
  config.protocol = protocol;
  config.flows = flows;
  config.duration_s = duration_s;
  config.seed = seed;
  config.fault_seed = seed * 1000 + 7;  // independent fault stream
  // Figure-9-style staggered starts: DCQCN converges from anywhere; TIMELY
  // keeps whatever unfairness the stagger (and then the loss) hands it.
  for (int i = 0; i < flows; ++i) {
    config.start_times_s.push_back(i * duration_s / (20.0 * flows));
  }
  if (protocol == exp::Protocol::kDcqcn) {
    config.faults.cnp_loss = loss;
  } else {
    config.faults.ack_loss = loss;
  }
  // Watchdog, not a tuning knob: a degraded-feedback run that spins must die
  // loudly instead of hanging the sweep.
  config.event_budget = 500'000'000;

  const auto result = exp::run_long_flows(config);

  Row row;
  row.protocol = protocol;
  row.loss = loss;
  // Fairness over the settled tail: mean rate of each flow in the last 30%.
  std::vector<double> tail_rates;
  for (const auto& series : result.rate_gbps) {
    tail_rates.push_back(series.mean_over(0.7 * duration_s, duration_s));
  }
  row.jain = require_stat(jain_fairness(tail_rates), "jain(tail_rates)");
  row.min_rate_gbps = tail_rates.empty() ? 0.0 : *std::min_element(tail_rates.begin(), tail_rates.end());
  row.max_rate_gbps = tail_rates.empty() ? 0.0 : *std::max_element(tail_rates.begin(), tail_rates.end());
  row.utilization = result.utilization;
  row.queue_mean_kb = result.queue_bytes.mean_over(0.0, duration_s) / 1e3;
  row.queue_max_kb =
      require_stat(result.queue_bytes.max_over(0.0, duration_s), "queue max") / 1e3;
  row.feedback_dropped =
      result.faults.cnps_dropped + result.faults.acks_dropped;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const int flows = argc > 1 ? std::atoi(argv[1]) : 10;
  const double duration_s = argc > 2 ? std::atof(argv[2]) : 0.1;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1;
  if (flows <= 0 || duration_s <= 0.0) {
    std::fprintf(stderr,
                 "usage: fault_study [flows > 0] [duration_s > 0] [seed]\n"
                 "(a run with no flows has no fairness to report)\n");
    return 2;
  }

  const std::vector<double> losses = {0.0, 0.001, 0.005, 0.01, 0.02, 0.05};
  std::vector<std::pair<exp::Protocol, double>> grid;
  for (exp::Protocol protocol :
       {exp::Protocol::kDcqcn, exp::Protocol::kTimely}) {
    for (double loss : losses) grid.emplace_back(protocol, loss);
  }

  par::SweepTiming timing;
  const std::vector<Row> rows = par::parallel_map(
      grid,
      [&](const std::pair<exp::Protocol, double>& cell) {
        return run_one(cell.first, cell.second, flows, duration_s, seed);
      },
      0, &timing);
  // Same numbers live in the prof.par.* histograms when the observability
  // summary is armed; don't print them twice.
  if (std::getenv("ECND_OBS_SUMMARY") == nullptr) {
    std::fprintf(stderr,
                 "[fault_study] %zu runs on %zu threads: wall %.2fs "
                 "(serial-equivalent %.2fs)\n",
                 timing.tasks, timing.threads, timing.wall_s, timing.task_sum_s);
  }

  std::size_t slot = 0;
  for (exp::Protocol protocol :
       {exp::Protocol::kDcqcn, exp::Protocol::kTimely}) {
    std::printf("%s, %d flows, %.3gs, seed %llu: feedback loss sweep\n",
                exp::protocol_name(protocol), flows, duration_s,
                static_cast<unsigned long long>(seed));
    std::printf("  %7s  %6s  %9s  %9s  %5s  %10s  %9s  %8s\n", "loss", "jain",
                "min Gb/s", "max Gb/s", "util", "queue KB", "max KB",
                "dropped");
    for (std::size_t i = 0; i < losses.size(); ++i) {
      const Row& row = rows[slot++];
      std::printf(
          "  %6.2f%%  %6.4f  %9.3f  %9.3f  %5.2f  %10.1f  %9.1f  %8llu\n",
          row.loss * 100.0, row.jain, row.min_rate_gbps, row.max_rate_gbps,
          row.utilization, row.queue_mean_kb, row.queue_max_kb,
          static_cast<unsigned long long>(row.feedback_dropped));
    }
    std::printf("\n");
  }

  // Machine-readable block (same numbers; byte-identical for a given seed).
  std::printf("csv,protocol,loss,jain,min_rate_gbps,max_rate_gbps,utilization,"
              "queue_mean_kb,queue_max_kb,feedback_dropped\n");
  for (const Row& row : rows) {
    std::printf("csv,%s,%.4f,%.6f,%.6f,%.6f,%.6f,%.3f,%.3f,%llu\n",
                exp::protocol_name(row.protocol), row.loss, row.jain,
                row.min_rate_gbps, row.max_rate_gbps, row.utilization,
                row.queue_mean_kb, row.queue_max_kb,
                static_cast<unsigned long long>(row.feedback_dropped));
  }

  // Manifest: one jain/utilization observable per (protocol, loss) cell plus
  // the §5.2 contrast the study exists to show — DCQCN's fairness floor
  // across the whole loss sweep vs TIMELY's.
  obs::RunManifest manifest("fault_study");
  manifest.param("flows", flows)
      .param("duration_s", duration_s)
      .param("seed", seed)
      .param("losses", "0,0.001,0.005,0.01,0.02,0.05");
  double jain_floor_dcqcn = 1.0, jain_floor_timely = 1.0;
  for (const Row& row : rows) {
    char key[48];
    std::snprintf(key, sizeof(key), ".%s.loss%04d",
                  exp::protocol_key(row.protocol),
                  static_cast<int>(row.loss * 10000 + 0.5));
    manifest.observable("jain" + std::string(key), row.jain)
        .observable("utilization" + std::string(key), row.utilization)
        .observable("feedback_dropped" + std::string(key),
                    row.feedback_dropped);
    double& floor = row.protocol == exp::Protocol::kDcqcn ? jain_floor_dcqcn
                                                          : jain_floor_timely;
    floor = std::min(floor, row.jain);
  }
  manifest.observable("jain_floor.dcqcn", jain_floor_dcqcn)
      .observable("jain_floor.timely", jain_floor_timely);
  manifest.write_if_requested();
  return 0;
}
