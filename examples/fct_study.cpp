// fct_study: run the paper's §5.1 flow-completion-time experiment for one
// protocol and load from the command line, printing the FCT summary, the
// CDF tail, and the bottleneck queue shape.
//
// Usage: fct_study [dcqcn|timely|patched] [load] [num_flows] [seed]

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/stats.hpp"
#include "core/table.hpp"
#include "exp/scenarios.hpp"

using namespace ecnd;

int main(int argc, char** argv) {
  exp::Protocol protocol = exp::Protocol::kDcqcn;
  if (argc > 1) {
    if (std::strcmp(argv[1], "timely") == 0) protocol = exp::Protocol::kTimely;
    if (std::strcmp(argv[1], "patched") == 0) protocol = exp::Protocol::kPatchedTimely;
  }
  const double load = argc > 2 ? std::atof(argv[2]) : 0.6;
  const int flows = argc > 3 ? std::atoi(argv[3]) : 1500;
  const std::uint64_t seed = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 1;
  if (load <= 0.0 || flows <= 0) {
    std::fprintf(stderr,
                 "usage: fct_study [dcqcn|timely|patched] [load > 0] "
                 "[flows > 0] [seed]\n");
    return 2;
  }

  auto config = exp::make_fct_config(protocol, load);
  config.num_flows = flows;
  config.seed = seed;

  std::printf("%s at load %.2f (%d flows, seed %llu)...\n",
              exp::protocol_name(protocol), load, flows,
              static_cast<unsigned long long>(seed));
  const auto result = exp::run_fct_experiment(config);

  std::printf("\nsmall flows (<100KB): n=%zu\n", result.small.count);
  std::printf("  median %8.1f us\n  p90    %8.1f us\n  p99    %8.1f us\n",
              result.small.median_us, result.small.p90_us, result.small.p99_us);
  std::printf("all flows: median %.1f us, p99 %.1f us\n",
              result.overall.median_us, result.overall.p99_us);
  std::printf("bottleneck queue: mean %.1f KB, max %.1f KB\n",
              result.queue_bytes.mean_over(0.0, 1e9) / 1e3,
              require_stat(result.queue_bytes.max_over(0.0, 1e9), "queue max") / 1e3);
  std::printf("drops: %llu, all completed: %s\n",
              static_cast<unsigned long long>(result.drops),
              result.all_completed ? "yes" : "NO");

  std::printf("\nsmall-flow FCT CDF tail:\n");
  const auto cdf = empirical_cdf(result.small_fcts_us, 200);
  for (double frac : {0.5, 0.75, 0.9, 0.95, 0.99}) {
    for (const auto& point : cdf) {
      if (point.fraction >= frac) {
        std::printf("  P%2.0f  %10.1f us\n", frac * 100.0, point.value);
        break;
      }
    }
  }
  return 0;
}
