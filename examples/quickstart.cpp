// Quickstart: build a two-switch dumbbell, run two DCQCN flows, and watch
// the bottleneck queue settle at the fixed point the control-theory layer
// predicts. This touches each layer of the library once:
//   * control/  - fixed-point prediction (Theorem 1)
//   * sim/      - packet-level network (switches, RED/ECN, hosts)
//   * proto/    - DCQCN RP/NP endpoints
//   * fluid/    - the same scenario as a delay-differential fluid model
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "control/dcqcn_analysis.hpp"
#include "fluid/dcqcn_model.hpp"
#include "fluid/fluid_model.hpp"
#include "proto/factories.hpp"
#include "sim/network.hpp"

using namespace ecnd;

int main() {
  // 1. Predict the operating point analytically.
  fluid::DcqcnFluidParams params;  // 10G link, [31] default DCQCN settings
  params.num_flows = 2;
  const auto fixed_point = control::solve_dcqcn_fixed_point(params);
  std::printf("Theorem 1 prediction: p* = %.4f, queue = %.1f KB, "
              "per-flow rate = %.2f Gb/s\n",
              fixed_point.p_star, fixed_point.q_star_bytes(params) / 1e3,
              to_gbps(fixed_point.rate_pps * 8.0 * params.mtu_bytes));

  // 2. Integrate the fluid model.
  fluid::DcqcnFluidModel model(params);
  const auto fluid_run = fluid::simulate(model, /*duration=*/0.05,
                                         /*sample_interval=*/1e-4);
  std::printf("Fluid model at t=50ms: queue = %.1f KB, rates = %.2f / %.2f Gb/s\n",
              fluid_run.queue_bytes.back().value / 1e3,
              fluid_run.flow_rate_gbps[0].back().value,
              fluid_run.flow_rate_gbps[1].back().value);

  // 3. Run the same scenario packet by packet.
  sim::Network net(/*seed=*/1);
  sim::StarConfig topo;
  topo.senders = 2;
  topo.red.enabled = true;  // RED/ECN with the paper's Kmin/Kmax/Pmax
  sim::Star star = make_star(net, topo);
  for (sim::Host* sender : star.senders) {
    sender->set_controller_factory(
        proto::make_dcqcn_factory(net.sim(), proto::DcqcnRpParams{}));
  }
  std::vector<std::uint64_t> flow_ids;
  for (sim::Host* sender : star.senders) {
    flow_ids.push_back(sender->start_flow(star.receiver->id(), megabytes(1000.0)));
  }
  TimeSeries queue("queue");
  net.monitor_queue(star.bottleneck(), microseconds(100.0), seconds(0.05), queue);
  net.sim().run_until(seconds(0.05));

  std::printf("Packet sim  [30,50]ms: queue = %.1f KB (mean), "
              "rates = %.2f / %.2f Gb/s, %llu CNPs, %llu drops\n",
              queue.mean_over(0.03, 0.05) / 1e3,
              to_gbps(star.senders[0]->flow_rate(flow_ids[0])),
              to_gbps(star.senders[1]->flow_rate(flow_ids[1])),
              static_cast<unsigned long long>(star.receiver->cnps_sent()),
              static_cast<unsigned long long>(net.total_drops()));
  std::printf("\nAll three layers should agree on ~%.0f KB and ~5 Gb/s each.\n",
              fixed_point.q_star_bytes(params) / 1e3);
  return 0;
}
