// stability_map: sweep the control-theory layer over (N, feedback delay) and
// print a stability map for DCQCN, plus the patched-TIMELY margin curve —
// the tool you'd use to answer "is my deployment's parameter corner safe?"
//
// Usage: stability_map [n_max] [delay_max_us]

#include <cstdio>
#include <cstdlib>

#include "control/dcqcn_analysis.hpp"
#include "control/timely_analysis.hpp"

using namespace ecnd;

int main(int argc, char** argv) {
  const int n_max = argc > 1 ? std::atoi(argv[1]) : 64;
  const double delay_max_us = argc > 2 ? std::atof(argv[2]) : 100.0;

  std::printf("DCQCN phase-margin map (rows: delay, cols: N). "
              "Symbols: '#'>45deg  '+'>15deg  '.'>0deg  '!'<=0deg\n\n      ");
  std::vector<int> ns;
  for (int n = 2; n <= n_max; n = n < 8 ? n + 2 : n * 3 / 2) ns.push_back(n);
  for (int n : ns) std::printf("%4d", n);
  std::printf("   (N)\n");
  for (double delay_us = 5.0; delay_us <= delay_max_us; delay_us *= 1.8) {
    std::printf("%5.0fus", delay_us);
    for (int n : ns) {
      fluid::DcqcnFluidParams p;
      p.num_flows = n;
      p.feedback_delay = delay_us * 1e-6;
      const double pm = control::dcqcn_stability(p).phase_margin_deg;
      std::printf("   %c", pm > 45.0 ? '#' : pm > 15.0 ? '+' : pm > 0.0 ? '.' : '!');
    }
    std::printf("\n");
  }

  std::printf("\nPatched TIMELY margin vs N (default §4.3 parameters):\n");
  for (int n = 2; n <= n_max; n = n < 8 ? n + 2 : n + 8) {
    fluid::TimelyFluidParams p = fluid::patched_timely_defaults();
    p.num_flows = n;
    const auto fp = control::patched_timely_fixed_point(p);
    if (fp.q_star_pkts >= p.qhigh_pkts()) {
      std::printf("  N=%3d: no interior fixed point (q* above C*T_high)\n", n);
      continue;
    }
    const auto report = control::patched_timely_stability(p);
    std::printf("  N=%3d: q*=%6.1f KB  tau'=%6.1f us  margin %+7.1f deg  %s\n", n,
                fp.q_star_pkts, fp.feedback_delay * 1e6, report.phase_margin_deg,
                report.stable() ? "stable" : "UNSTABLE");
  }
  return 0;
}
