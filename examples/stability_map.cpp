// stability_map: sweep the control-theory layer over (N, feedback delay) and
// print a stability map for DCQCN, plus the patched-TIMELY margin curve —
// the tool you'd use to answer "is my deployment's parameter corner safe?"
//
// Both sweeps run on the parallel engine (ECND_THREADS workers); every grid
// cell is an independent linearization, and the map prints from pre-sized
// slots so output is byte-identical at any thread count.
//
// Usage: stability_map [n_max] [delay_max_us]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "control/dcqcn_analysis.hpp"
#include "control/timely_analysis.hpp"
#include "core/parallel.hpp"

using namespace ecnd;

namespace {

struct TimelyRow {
  control::PatchedTimelyFixedPoint fp;
  bool interior = false;
  control::StabilityReport report;
};

}  // namespace

int main(int argc, char** argv) {
  const int n_max = argc > 1 ? std::atoi(argv[1]) : 64;
  const double delay_max_us = argc > 2 ? std::atof(argv[2]) : 100.0;

  std::printf("DCQCN phase-margin map (rows: delay, cols: N). "
              "Symbols: '#'>45deg  '+'>15deg  '.'>0deg  '!'<=0deg\n\n      ");
  std::vector<int> ns;
  for (int n = 2; n <= n_max; n = n < 8 ? n + 2 : n * 3 / 2) ns.push_back(n);
  std::vector<double> delays;
  for (double delay_us = 5.0; delay_us <= delay_max_us; delay_us *= 1.8) {
    delays.push_back(delay_us);
  }

  std::vector<std::pair<double, int>> grid;
  for (double delay_us : delays) {
    for (int n : ns) grid.emplace_back(delay_us, n);
  }
  const std::vector<double> margins = par::parallel_map(
      grid, [](const std::pair<double, int>& cell) {
        fluid::DcqcnFluidParams p;
        p.num_flows = cell.second;
        p.feedback_delay = cell.first * 1e-6;
        return control::dcqcn_stability(p).phase_margin_deg;
      });

  for (int n : ns) std::printf("%4d", n);
  std::printf("   (N)\n");
  std::size_t slot = 0;
  for (double delay_us : delays) {
    std::printf("%5.0fus", delay_us);
    for (std::size_t c = 0; c < ns.size(); ++c) {
      const double pm = margins[slot++];
      std::printf("   %c", pm > 45.0 ? '#' : pm > 15.0 ? '+' : pm > 0.0 ? '.' : '!');
    }
    std::printf("\n");
  }

  std::printf("\nPatched TIMELY margin vs N (default §4.3 parameters):\n");
  std::vector<int> timely_ns;
  for (int n = 2; n <= n_max; n = n < 8 ? n + 2 : n + 8) timely_ns.push_back(n);
  const std::vector<TimelyRow> rows = par::parallel_map(
      timely_ns, [](int n) {
        TimelyRow row;
        fluid::TimelyFluidParams p = fluid::patched_timely_defaults();
        p.num_flows = n;
        row.fp = control::patched_timely_fixed_point(p);
        row.interior = row.fp.q_star_pkts < p.qhigh_pkts();
        if (row.interior) row.report = control::patched_timely_stability(p);
        return row;
      });
  for (std::size_t i = 0; i < timely_ns.size(); ++i) {
    const TimelyRow& row = rows[i];
    if (!row.interior) {
      std::printf("  N=%3d: no interior fixed point (q* above C*T_high)\n",
                  timely_ns[i]);
      continue;
    }
    std::printf("  N=%3d: q*=%6.1f KB  tau'=%6.1f us  margin %+7.1f deg  %s\n",
                timely_ns[i], row.fp.q_star_pkts, row.fp.feedback_delay * 1e6,
                row.report.phase_margin_deg,
                row.report.stable() ? "stable" : "UNSTABLE");
  }
  return 0;
}
